// Robustness layer (DESIGN.md section 10): deterministic fault
// injection, the trace quality gate, adaptive re-measurement, archive
// repair, and checkpoint/resume. The acceptance pins live here:
//
//   - a fault plan with >= 10% dropped + 5% desynced + 2% saturated
//     queries at the bench noise level still recovers f exactly through
//     the adaptive controller, identically at 1 and >1 workers;
//   - a checkpointed run killed mid-attack resumes bit-identically.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "attack/checkpoint.h"
#include "attack/key_recovery.h"
#include "attack/parallel_attack.h"
#include "attack/quality.h"
#include "attack/recovery_pipeline.h"
#include "common/rng.h"
#include "exec/thread_pool.h"
#include "falcon/falcon.h"
#include "sca/campaign.h"
#include "sca/faults.h"
#include "tracestore/archive.h"

namespace fd::attack {
namespace {

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) { clear(); }
  ~TempFile() { clear(); }
  void clear() const {
    std::remove(path.c_str());
    std::remove((path + ".fdckpt").c_str());
    std::remove((path + ".fdckpt.tmp").c_str());
  }
  std::string path;
};

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

falcon::KeyPair toy_victim(unsigned logn = 3) {
  ChaCha20Prng rng("faults test victim");
  return falcon::keygen(logn, rng);
}

sca::FaultConfig acceptance_faults() {
  sca::FaultConfig fc;
  fc.drop_rate = 0.10;
  fc.desync_rate = 0.05;
  fc.saturate_rate = 0.02;
  return fc;
}

RecoveryPipelineConfig pipeline_config(const std::string& archive, std::size_t threads = 1) {
  RecoveryPipelineConfig cfg;
  cfg.attack.num_traces = 350;
  cfg.attack.device.noise_sigma = 2.0;
  cfg.attack.adversarial_random = 100;
  cfg.attack.seed = 0xFD04;
  cfg.attack.threads = threads;
  cfg.archive_path = archive;
  return cfg;
}

// --- fault plan ------------------------------------------------------------

TEST(FaultPlan, StatelessAndOrderIndependent) {
  sca::FaultConfig fc;
  fc.drop_rate = 0.1;
  fc.desync_rate = 0.08;
  fc.saturate_rate = 0.05;
  fc.seed = 0xABCD;
  const sca::FaultPlan plan(fc);

  std::vector<sca::QueryFault> forward(2000);
  for (std::size_t q = 0; q < forward.size(); ++q) forward[q] = plan.query_fault(q);
  // Same decisions recomputed in reverse order from a second plan object.
  const sca::FaultPlan again(fc);
  for (std::size_t q = forward.size(); q-- > 0;) {
    const auto qf = again.query_fault(q);
    EXPECT_EQ(qf.drop, forward[q].drop);
    EXPECT_EQ(qf.desync, forward[q].desync);
    EXPECT_EQ(qf.saturate, forward[q].saturate);
  }

  std::size_t drops = 0, desyncs = 0, sats = 0;
  for (const auto& qf : forward) {
    drops += qf.drop;
    desyncs += qf.desync != 0;
    sats += qf.saturate;
    if (qf.drop) {  // a missed trigger produces nothing to desync or clip
      EXPECT_EQ(qf.desync, 0U);
      EXPECT_FALSE(qf.saturate);
    }
    if (qf.desync != 0) {
      EXPECT_GE(qf.desync, fc.desync_min);
      EXPECT_LE(qf.desync, fc.desync_max);
    }
  }
  // Rates are honoured within loose tolerance (deterministic, not lucky).
  EXPECT_GT(drops, 120U);
  EXPECT_LT(drops, 300U);
  EXPECT_GT(desyncs, 80U);
  EXPECT_GT(sats, 40U);
}

TEST(FaultPlan, SeedChangesThePlan) {
  sca::FaultConfig a;
  a.drop_rate = 0.2;
  sca::FaultConfig b = a;
  b.seed = a.seed + 1;
  std::size_t differs = 0;
  for (std::size_t q = 0; q < 500; ++q) {
    differs += sca::FaultPlan(a).query_fault(q).drop != sca::FaultPlan(b).query_fault(q).drop;
  }
  EXPECT_GT(differs, 50U);
}

TEST(FaultPlan, ParseSpec) {
  sca::FaultConfig fc;
  std::string err;
  ASSERT_TRUE(sca::parse_fault_plan(
      "drop=0.1,desync=0.05,desync_min=40,desync_max=80,sat=0.02,glitch=0.01,"
      "chunk=0.03,fail=0.25,seed=0xBEEF",
      fc, &err))
      << err;
  EXPECT_DOUBLE_EQ(fc.drop_rate, 0.1);
  EXPECT_DOUBLE_EQ(fc.desync_rate, 0.05);
  EXPECT_EQ(fc.desync_min, 40U);
  EXPECT_EQ(fc.desync_max, 80U);
  EXPECT_DOUBLE_EQ(fc.saturate_rate, 0.02);
  EXPECT_DOUBLE_EQ(fc.glitch_rate, 0.01);
  EXPECT_DOUBLE_EQ(fc.chunk_corrupt_rate, 0.03);
  EXPECT_DOUBLE_EQ(fc.capture_fail_rate, 0.25);
  EXPECT_EQ(fc.seed, 0xBEEFULL);

  sca::FaultConfig empty;
  ASSERT_TRUE(sca::parse_fault_plan("", empty, &err));
  EXPECT_FALSE(empty.any());

  EXPECT_FALSE(sca::parse_fault_plan("bogus=1", fc, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(sca::parse_fault_plan("drop=notanumber", fc, &err));
  EXPECT_FALSE(sca::parse_fault_plan("drop", fc, &err));
}

// Sharded faulted capture is byte-identical at any worker count: the
// shard plan (not the pool size) is the experiment's identity, and
// fault decisions key on campaign-global query indices.
TEST(FaultPlan, FaultedShardedCaptureIsByteIdenticalAcrossWorkerCounts) {
  const auto victim = toy_victim();
  sca::ShardedCampaignConfig cfg;
  cfg.base.num_traces = 96;
  cfg.base.device.noise_sigma = 2.0;
  cfg.base.seed = 0x5EED;
  cfg.base.faults.drop_rate = 0.15;
  cfg.base.faults.desync_rate = 0.1;
  cfg.base.faults.saturate_rate = 0.05;
  cfg.base.faults.glitch_rate = 0.02;
  cfg.base.faults.chunk_corrupt_rate = 0.05;
  cfg.num_shards = 3;

  TempFile serial("flt_serial.fdtrace");
  const auto r0 = sca::run_campaign_sharded(victim.sk, cfg, serial.path, nullptr);
  ASSERT_TRUE(r0.ok) << r0.error;
  const auto ref = read_file(serial.path);
  ASSERT_FALSE(ref.empty());

  for (const std::size_t workers : {1UL, 2UL, 7UL}) {
    exec::ThreadPool pool(workers);
    TempFile tmp("flt_w" + std::to_string(workers) + ".fdtrace");
    const auto r = sca::run_campaign_sharded(victim.sk, cfg, tmp.path, &pool);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.queries, r0.queries);
    EXPECT_EQ(r.records, r0.records);
    EXPECT_EQ(read_file(tmp.path), ref) << workers << " workers diverged";
  }
}

// --- quality gate ----------------------------------------------------------

// A synthetic slot: D copies of a positive "signal" shape plus small
// per-trace variation. The per-sample ramp keeps every value distinct --
// real traces carry continuous noise, and the saturation screen keys on
// exact-value collisions, so quantized synthetics would read as clipped.
sca::TraceSet synthetic_set(std::size_t traces, std::size_t samples) {
  sca::TraceSet set;
  set.slot = 0;
  for (std::size_t t = 0; t < traces; ++t) {
    sca::CapturedTrace ct;
    ct.trace.samples.resize(samples);
    for (std::size_t i = 0; i < samples; ++i) {
      ct.trace.samples[i] = 8.0f + 4.0f * static_cast<float>((i * 7 + 3) % 5) +
                            0.03f * static_cast<float>(i) + 0.01f * static_cast<float>(t);
    }
    set.traces.push_back(std::move(ct));
  }
  return set;
}

TEST(QualityGate, DisabledIsBitIdenticalPassThrough) {
  auto set = synthetic_set(8, 32);
  const auto before = set;
  QualityConfig qc;  // enabled = false
  const auto rep = screen_trace_set(set, qc, 4);
  EXPECT_EQ(rep.total, 8U);
  EXPECT_EQ(rep.accepted, 8U);
  ASSERT_EQ(set.traces.size(), before.traces.size());
  for (std::size_t t = 0; t < set.traces.size(); ++t) {
    EXPECT_EQ(set.traces[t].trace.samples, before.traces[t].trace.samples);
  }
}

TEST(QualityGate, RejectsSaturatedTraces) {
  auto set = synthetic_set(10, 40);
  // Clip trace 3 hard: a third of its samples pinned at the max.
  auto& s = set.traces[3].trace.samples;
  for (std::size_t i = 0; i < s.size(); i += 3) s[i] = 30.0f;
  QualityConfig qc;
  qc.enabled = true;
  const auto rep = screen_trace_set(set, qc, 0);
  EXPECT_EQ(rep.total, 10U);
  EXPECT_EQ(rep.rejected_saturated, 1U);
  EXPECT_EQ(rep.accepted, 9U);
  EXPECT_EQ(set.traces.size(), 9U);
}

TEST(QualityGate, RejectsEnergyOutliers) {
  auto set = synthetic_set(12, 40);
  set.traces[5].trace.samples[7] = 500.0f;  // glitch spike
  QualityConfig qc;
  qc.enabled = true;
  const auto rep = screen_trace_set(set, qc, 0);
  EXPECT_EQ(rep.rejected_energy, 1U);
  EXPECT_EQ(rep.accepted, 11U);
}

TEST(QualityGate, RealignsJitteredAndRejectsDesynced) {
  const std::size_t lag_max = 4, window = 28, samples = window + lag_max;
  // Traces carrying the same positive signal at known lags.
  std::vector<float> signal(window);
  for (std::size_t i = 0; i < window; ++i) {
    signal[i] = 6.0f + 3.0f * static_cast<float>((i * 5 + 1) % 7) +
                0.05f * static_cast<float>(i);  // distinct values (see synthetic_set)
  }
  sca::TraceSet set;
  const std::size_t lags[] = {0, 2, 4, 1, 0, 3};
  for (const std::size_t lag : lags) {
    sca::CapturedTrace ct;
    ct.trace.samples.assign(samples, 0.0f);
    for (std::size_t i = 0; i < window; ++i) ct.trace.samples[lag + i] = signal[i];
    set.traces.push_back(std::move(ct));
  }
  // One grossly desynced trace: comparable energy, no matching shape at
  // any admissible lag.
  sca::CapturedTrace bad;
  bad.trace.samples.resize(samples);
  std::uint64_t h = 0x2545F4914F6CDD1DULL;
  for (std::size_t i = 0; i < samples; ++i) {
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    bad.trace.samples[i] = 1.0f + 12.0f * static_cast<float>(h >> 40) * 0x1.0p-24f;
  }
  set.traces.push_back(std::move(bad));

  QualityConfig qc;
  qc.enabled = true;
  qc.energy_mad_k = 1e9;           // isolate the alignment screen
  qc.saturation_min_pinned = 12;   // zero-filled tails are not clipping
  const auto rep = screen_trace_set(set, qc, lag_max);
  EXPECT_EQ(rep.total, 7U);
  EXPECT_EQ(rep.rejected_alignment, 1U);
  EXPECT_EQ(rep.accepted, 6U);
  EXPECT_EQ(rep.realigned, 4U);  // the four nonzero lags

  // Every survivor now carries the signal at lag 0.
  ASSERT_EQ(set.traces.size(), 6U);
  for (const auto& ct : set.traces) {
    for (std::size_t i = 0; i < window; ++i) {
      EXPECT_FLOAT_EQ(ct.trace.samples[i], signal[i]);
    }
  }
}

TEST(QualityGate, ConfidenceCriterion) {
  ComponentResult r;
  r.sign_phase.top = {{0, 0.9}, {1, 0.5}};                  // gap 0.4
  r.low_prune.top = {{10, 0.8}, {11, 0.75}, {12, 0.1}};     // gap 0.05 (decisive min)
  r.high_prune.top = {{20, 0.9}, {21, 0.3}};                // gap 0.6
  r.exp_phase.top = {{30, 0.7}, {31, 0.7}};                 // alias tie, excluded
  ConfidenceConfig cc;
  cc.margin_factor = 1.0;

  const auto c400 = component_confidence(r, 400, cc);
  EXPECT_NEAR(c400.margin, 0.05, 1e-12);
  EXPECT_NEAR(c400.threshold, confidence_interval(cc.confidence, 400), 1e-12);
  EXPECT_FALSE(c400.confident);  // 0.05 < z/sqrt(400) ~ 0.19

  // More traces shrink the interval below the margin.
  const auto c40000 = component_confidence(r, 40000, cc);
  EXPECT_TRUE(c40000.confident);

  // The deflation factor scales the bar, not the margin.
  cc.margin_factor = 0.1;
  EXPECT_TRUE(component_confidence(r, 400, cc).confident);

  // No traces -> never confident.
  EXPECT_FALSE(component_confidence(r, 0, cc).confident);
}

// The countermeasure regression: at jitter_max > 0 the naive column
// extraction smears the leakage and the attack collapses; the gate's
// realignment pass recovers every component from the same traces.
TEST(QualityGate, RealignmentDefeatsJitterThatBreaksTheNaivePath) {
  ChaCha20Prng rng("victim key seed");
  const auto victim = falcon::keygen(3, rng);
  KeyRecoveryConfig atk;
  atk.num_traces = 350;
  atk.device.noise_sigma = 2.0;
  atk.device.jitter_max = 6;
  atk.seed = 0xDE40;
  atk.adversarial_random = 100;

  sca::CampaignConfig camp;
  camp.num_traces = atk.num_traces;
  camp.device = atk.device;
  camp.seed = atk.seed;
  const auto sets = sca::run_full_campaign(victim.sk, camp);
  const std::size_t hn = sets.size(), n = 2 * hn;

  std::size_t naive_correct = 0, gated_correct = 0;
  for (std::size_t idx = 0; idx < n; ++idx) {
    const auto cix = component_index(idx, hn);
    const auto cfg = component_attack_config(victim.sk, atk, 0, cix.slot, cix.imag);
    const bool truth_bits_match = [&](const sca::TraceSet& set) {
      const auto ds = build_component_dataset(set, cix.imag);
      return attack_component(ds, cfg).bits == victim.sk.b01[idx].bits();
    }(sets[cix.slot]);
    naive_correct += truth_bits_match;

    sca::TraceSet gated = sets[cix.slot];  // the gate mutates in place
    QualityConfig qc;
    qc.enabled = true;
    const auto rep = screen_trace_set(gated, qc, atk.device.jitter_max);
    EXPECT_GT(rep.realigned, rep.total / 2) << "jitter should realign most traces";
    const auto ds = build_component_dataset(gated, cix.imag);
    gated_correct += attack_component(ds, cfg).bits == victim.sk.b01[idx].bits();
  }
  EXPECT_LE(naive_correct, n / 4) << "jitter no longer breaks the naive path";
  EXPECT_EQ(gated_correct, n);
}

// --- archive repair --------------------------------------------------------

TEST(Repair, SalvagesValidChunksAndNamesTheLost) {
  const auto victim = toy_victim();
  sca::CampaignConfig cfg;
  cfg.num_traces = 30;
  cfg.device.noise_sigma = 2.0;
  cfg.seed = 0x11;

  TempFile in("rep_in.fdtrace");
  TempFile out("rep_out.fdtrace");
  const auto res = sca::run_campaign_to_archive(victim.sk, cfg, in.path, 8);
  ASSERT_TRUE(res.ok) << res.error;
  // logn 3 -> 4 slots/query -> 120 records -> 15 chunks of 8.

  // Flip one payload byte of chunk 1.
  tracestore::VerifyReport vr;
  ASSERT_TRUE(tracestore::verify_archive(in.path, vr));
  const std::size_t chunk_bytes =
      tracestore::kChunkHeaderBytes + 8 * vr.meta.record_bytes();
  const std::size_t victim_off = tracestore::kHeaderBytes + chunk_bytes +
                                 tracestore::kChunkHeaderBytes + 5;
  {
    std::fstream f(in.path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(victim_off));
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(static_cast<std::streamoff>(victim_off));
    f.write(&b, 1);
  }
  ASSERT_TRUE(tracestore::verify_archive(in.path, vr));
  ASSERT_EQ(vr.chunks_corrupt, 1U);

  tracestore::RepairReport rep;
  std::string err;
  ASSERT_TRUE(tracestore::repair_archive(in.path, out.path, rep, &err)) << err;
  EXPECT_EQ(rep.chunks_dropped, 1U);
  ASSERT_EQ(rep.dropped_chunks.size(), 1U);
  EXPECT_EQ(rep.dropped_chunks[0], 1U);
  EXPECT_EQ(rep.records_kept, 112U);
  // The lost records are exactly chunk 1's file-order ordinals 8..15.
  std::vector<std::size_t> expect_lost = {8, 9, 10, 11, 12, 13, 14, 15};
  EXPECT_EQ(rep.dropped_record_ordinals, expect_lost);
  EXPECT_FALSE(rep.truncated_tail);

  // The repaired file verifies clean with the surviving records.
  tracestore::VerifyReport vr2;
  ASSERT_TRUE(tracestore::verify_archive(out.path, vr2));
  EXPECT_TRUE(vr2.clean());
  EXPECT_EQ(vr2.records, 112U);
}

// --- checkpoint ------------------------------------------------------------

ComponentResult sample_result(std::uint64_t tag) {
  ComponentResult r;
  r.sign = (tag & 1) != 0;
  r.exponent = 1020 + static_cast<unsigned>(tag % 7);
  r.x0 = static_cast<std::uint32_t>(0x1000000 + tag);
  r.x1 = static_cast<std::uint32_t>(0x8000000 + tag * 3);
  r.bits = 0xBFF0000000000000ULL ^ (tag * 0x9E3779B97F4A7C15ULL);
  r.sign_phase.value = r.sign;
  r.sign_phase.score = 0.75 + 1e-9 * static_cast<double>(tag);
  r.sign_phase.top = {{1, r.sign_phase.score}, {0, 0.2}};
  r.low_prune.value = r.x0;
  r.low_prune.score = 0.91;
  r.low_prune.top = {{r.x0, 0.91}, {r.x0 ^ 5, 0.34}, {7, -0.12}};
  r.high_prune.value = r.x1;
  r.high_prune.top = {{r.x1, 0.88}};
  r.exp_phase.top = {{r.exponent, 0.5}, {r.exponent + 16, 0.5}};
  return r;
}

TEST(Checkpoint, RoundTripsBitExactly) {
  CheckpointState st;
  st.reset(6);
  st.config_hash = 0xFEEDFACECAFEBEEFULL;
  st.remeasure_round = 2;
  for (const std::size_t i : {0UL, 2UL, 5UL}) {
    st.done[i] = 1;
    st.results[i] = sample_result(i + 1);
    st.accepted_traces[i] = 300 + i;
  }

  TempFile tmp("ckpt_rt.fdckpt");
  std::string err;
  ASSERT_TRUE(save_checkpoint(tmp.path, st, &err)) << err;

  CheckpointState back;
  ASSERT_TRUE(load_checkpoint(tmp.path, back, &err)) << err;
  EXPECT_EQ(back.config_hash, st.config_hash);
  EXPECT_EQ(back.remeasure_round, st.remeasure_round);
  ASSERT_EQ(back.done, st.done);
  ASSERT_EQ(back.accepted_traces, st.accepted_traces);
  for (std::size_t i = 0; i < st.done.size(); ++i) {
    if (!st.done[i]) continue;
    const auto& a = st.results[i];
    const auto& b = back.results[i];
    EXPECT_EQ(b.sign, a.sign);
    EXPECT_EQ(b.exponent, a.exponent);
    EXPECT_EQ(b.x0, a.x0);
    EXPECT_EQ(b.x1, a.x1);
    EXPECT_EQ(b.bits, a.bits);
    ASSERT_EQ(b.low_prune.top.size(), a.low_prune.top.size());
    for (std::size_t k = 0; k < a.low_prune.top.size(); ++k) {
      EXPECT_EQ(b.low_prune.top[k].guess, a.low_prune.top[k].guess);
      EXPECT_EQ(b.low_prune.top[k].score, a.low_prune.top[k].score);  // bit-exact doubles
    }
    EXPECT_EQ(b.sign_phase.score, a.sign_phase.score);
  }
}

TEST(Checkpoint, RejectsDamage) {
  CheckpointState st;
  st.reset(2);
  st.done[0] = 1;
  st.results[0] = sample_result(9);
  TempFile tmp("ckpt_dmg.fdckpt");
  std::string err;
  ASSERT_TRUE(save_checkpoint(tmp.path, st, &err)) << err;

  auto bytes = read_file(tmp.path);
  ASSERT_GT(bytes.size(), 20U);
  bytes[bytes.size() / 2] ^= 0x01;  // payload damage -> CRC mismatch
  {
    std::ofstream out(tmp.path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  CheckpointState back;
  EXPECT_FALSE(load_checkpoint(tmp.path, back, &err));
  EXPECT_FALSE(err.empty());

  EXPECT_FALSE(load_checkpoint("no_such_dir/x.fdckpt", back, &err));

  {  // truncated file
    std::ofstream out(tmp.path, std::ios::binary | std::ios::trunc);
    out.write("FDCKPT1", 7);
  }
  EXPECT_FALSE(load_checkpoint(tmp.path, back, &err));
}

// --- recovery pipeline robustness ------------------------------------------

TEST(Pipeline, StructuredErrorInsteadOfThrow) {
  const auto victim = toy_victim();
  auto cfg = pipeline_config("no_such_dir/pl.fdtrace");
  const auto out = run_recovery_pipeline(victim, cfg);
  EXPECT_FALSE(out.ok);
  EXPECT_FALSE(out.error.empty());
  EXPECT_FALSE(out.stages.empty());  // partial stage reports survive
  EXPECT_FALSE(out.recovery.f_exact);
}

TEST(Pipeline, CaptureRetriesSurviveAFlakyRig) {
  const auto victim = toy_victim();
  TempFile tmp("pl_retry.fdtrace");
  auto cfg = pipeline_config(tmp.path);
  cfg.faults.capture_fail_rate = 0.6;
  cfg.remeasure.max_capture_attempts = 8;
  const auto out = run_recovery_pipeline(victim, cfg);
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_TRUE(out.recovery.f_exact);
  EXPECT_GT(out.capture_attempts, 1U) << "fail=0.6 should force at least one retry";
}

TEST(Pipeline, ExhaustedCaptureBudgetIsAStructuredError) {
  const auto victim = toy_victim();
  TempFile tmp("pl_down.fdtrace");
  auto cfg = pipeline_config(tmp.path);
  cfg.faults.capture_fail_rate = 1.0;  // rig permanently down
  cfg.remeasure.max_capture_attempts = 3;
  const auto out = run_recovery_pipeline(victim, cfg);
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("rig down"), std::string::npos) << out.error;
  EXPECT_EQ(out.capture_attempts, 3U);
}

// Each single fault mode, gated and adaptive, still yields exact
// recovery end to end.
TEST(Pipeline, SurvivesEachSingleFaultMode) {
  const auto victim = toy_victim();
  struct Mode {
    const char* name;
    sca::FaultConfig fc;
  };
  std::vector<Mode> modes(5);
  modes[0] = {"drop", {}};
  modes[0].fc.drop_rate = 0.15;
  modes[1] = {"desync", {}};
  modes[1].fc.desync_rate = 0.08;
  modes[2] = {"saturate", {}};
  modes[2].fc.saturate_rate = 0.05;
  modes[3] = {"glitch", {}};
  modes[3].fc.glitch_rate = 0.03;
  modes[4] = {"chunk", {}};
  modes[4].fc.chunk_corrupt_rate = 0.08;

  for (const auto& m : modes) {
    TempFile tmp(std::string("pl_mode_") + m.name + ".fdtrace");
    auto cfg = pipeline_config(tmp.path);
    cfg.faults = m.fc;
    cfg.quality.enabled = true;
    cfg.adaptive = true;
    const auto out = run_recovery_pipeline(victim, cfg);
    ASSERT_TRUE(out.ok) << m.name << ": " << out.error;
    EXPECT_TRUE(out.recovery.f_exact) << m.name;
    EXPECT_TRUE(out.recovery.forgery_verified) << m.name;
  }
}

// The headline acceptance pin: >=10% dropped + 5% desynced + 2%
// saturated queries, and the adaptive controller still recovers f
// exactly -- with bit-identical results at 1 and >1 workers.
TEST(Pipeline, AcceptanceFaultPlanRecoversExactlyAtAnyWorkerCount) {
  const auto victim = toy_victim();

  RecoveryPipelineResult ref;
  bool have_ref = false;
  for (const std::size_t threads : {1UL, 3UL}) {
    TempFile tmp("pl_accept_t" + std::to_string(threads) + ".fdtrace");
    auto cfg = pipeline_config(tmp.path, threads);
    cfg.faults = acceptance_faults();
    cfg.quality.enabled = true;
    cfg.adaptive = true;
    const auto out = run_recovery_pipeline(victim, cfg);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_TRUE(out.recovery.f_exact);
    EXPECT_TRUE(out.recovery.forgery_verified);
    if (!have_ref) {
      ref = out;
      have_ref = true;
      continue;
    }
    // Worker count changes wall time only (DESIGN.md section 9).
    EXPECT_EQ(out.recovery.recovered_f, ref.recovery.recovered_f);
    EXPECT_EQ(out.recovery.derived_g, ref.recovery.derived_g);
    EXPECT_EQ(out.recovery.components_correct, ref.recovery.components_correct);
    EXPECT_EQ(out.flagged_components, ref.flagged_components);
    EXPECT_EQ(out.remeasure_rounds, ref.remeasure_rounds);
    EXPECT_EQ(out.quality.accepted, ref.quality.accepted);
    EXPECT_EQ(out.quality.rejected_saturated, ref.quality.rejected_saturated);
    EXPECT_EQ(out.quality.rejected_energy, ref.quality.rejected_energy);
  }
}

// Kill-after-N then resume reproduces an uninterrupted run bit for bit.
TEST(Pipeline, KilledRunResumesBitIdentically) {
  const auto victim = toy_victim();

  // Reference: one uninterrupted run.
  RecoveryPipelineResult ref;
  {
    TempFile tmp("pl_ref.fdtrace");
    auto cfg = pipeline_config(tmp.path);
    cfg.faults = acceptance_faults();
    cfg.quality.enabled = true;
    cfg.adaptive = true;
    ref = run_recovery_pipeline(victim, cfg);
    ASSERT_TRUE(ref.ok) << ref.error;
    ASSERT_TRUE(ref.recovery.f_exact);
  }

  TempFile tmp("pl_kill.fdtrace");
  auto cfg = pipeline_config(tmp.path);
  cfg.faults = acceptance_faults();
  cfg.quality.enabled = true;
  cfg.adaptive = true;
  cfg.checkpoint = true;
  cfg.checkpoint_every = 2;

  // Run 1: killed after 4 components land in the checkpoint.
  auto killed_cfg = cfg;
  killed_cfg.abort_after_components = 4;
  const auto killed = run_recovery_pipeline(victim, killed_cfg);
  EXPECT_FALSE(killed.ok);
  EXPECT_NE(killed.error.find("aborted"), std::string::npos) << killed.error;
  // The checkpoint and archive survive the kill for the resume.
  EXPECT_TRUE(std::ifstream(tmp.path).good());
  EXPECT_TRUE(std::ifstream(tmp.path + ".fdckpt").good());

  // Run 2: resume completes the attack without re-capturing.
  auto resume_cfg = cfg;
  resume_cfg.resume = true;
  const auto out = run_recovery_pipeline(victim, resume_cfg);
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_TRUE(out.resumed);
  EXPECT_TRUE(out.recovery.f_exact);
  EXPECT_TRUE(out.recovery.forgery_verified);

  // Bit-identical to the uninterrupted run.
  EXPECT_EQ(out.recovery.recovered_f, ref.recovery.recovered_f);
  EXPECT_EQ(out.recovery.derived_g, ref.recovery.derived_g);
  EXPECT_EQ(out.recovery.components_correct, ref.recovery.components_correct);
  EXPECT_EQ(out.recovery.components_total, ref.recovery.components_total);
  EXPECT_EQ(out.flagged_components, ref.flagged_components);
  EXPECT_EQ(out.partial, ref.partial);
}

// A checkpoint from a different experiment refuses to resume silently:
// the pipeline falls back to a fresh capture instead of mixing results.
TEST(Pipeline, ResumeRejectsForeignCheckpoint) {
  const auto victim = toy_victim();
  TempFile tmp("pl_foreign.fdtrace");
  auto cfg = pipeline_config(tmp.path);
  cfg.faults = acceptance_faults();
  cfg.quality.enabled = true;
  cfg.adaptive = true;
  cfg.checkpoint = true;
  cfg.checkpoint_every = 2;

  // Kill a run to leave a checkpoint behind...
  auto killed_cfg = cfg;
  killed_cfg.abort_after_components = 2;
  (void)run_recovery_pipeline(victim, killed_cfg);
  ASSERT_TRUE(std::ifstream(tmp.path + ".fdckpt").good());

  // ...then resume under a different attack seed: the hash mismatch must
  // force a fresh capture, and the run still completes.
  auto other = cfg;
  other.resume = true;
  other.attack.seed = cfg.attack.seed + 1;
  const auto out = run_recovery_pipeline(victim, other);
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_FALSE(out.resumed);
  EXPECT_TRUE(out.recovery.f_exact);
}

}  // namespace
}  // namespace fd::attack
