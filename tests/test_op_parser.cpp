// Event-stream parser: segmentation of raw captures into op records,
// including the data-dependent short forms (zero-operand multiplies,
// cancelled adds).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "falcon/falcon.h"
#include "fft/fft.h"
#include "sca/capture.h"
#include "sca/op_parser.h"

namespace fd::sca {
namespace {

using fpr::Fpr;

std::vector<fpr::LeakageEvent> capture(auto&& fn) {
  FullRecorder rec;
  {
    fpr::ScopedLeakageSink scope(&rec);
    fn();
  }
  return rec.events();
}

TEST(OpParser, SingleMul) {
  const auto ev = capture([] { (void)fpr::fpr_mul(Fpr::from_double(1.5), Fpr::from_double(2.5)); });
  const auto ops = parse_op_records(ev);
  ASSERT_EQ(ops.size(), 1U);
  EXPECT_EQ(ops[0].kind, OpRecord::Kind::kMul);
  EXPECT_EQ(ops[0].num_events, 17U);
}

TEST(OpParser, ZeroOperandMul) {
  const auto ev = capture([] { (void)fpr::fpr_mul(fpr::kZero, Fpr::from_double(2.5)); });
  const auto ops = parse_op_records(ev);
  ASSERT_EQ(ops.size(), 1U);
  EXPECT_EQ(ops[0].kind, OpRecord::Kind::kMulZero);
  EXPECT_EQ(ops[0].num_events, 1U);
}

TEST(OpParser, AddAndCancelledAdd) {
  const auto ev = capture([] {
    (void)fpr::fpr_add(Fpr::from_double(1.0), Fpr::from_double(2.0));   // 3 events
    (void)fpr::fpr_add(Fpr::from_double(1.0), Fpr::from_double(-1.0));  // cancels: 2
  });
  const auto ops = parse_op_records(ev);
  ASSERT_EQ(ops.size(), 2U);
  EXPECT_EQ(ops[0].kind, OpRecord::Kind::kAdd);
  EXPECT_EQ(ops[0].num_events, 3U);
  EXPECT_EQ(ops[1].kind, OpRecord::Kind::kAdd);
  EXPECT_EQ(ops[1].num_events, 2U);
}

TEST(OpParser, MixedSequenceWithTriggers) {
  const auto ev = capture([] {
    fpr::leak(fpr::LeakageTag::kTriggerBegin, 7);
    (void)fpr::fpr_mul(Fpr::from_double(3.0), Fpr::from_double(4.0));
    (void)fpr::fpr_add(Fpr::from_double(3.0), Fpr::from_double(4.0));
    fpr::leak(fpr::LeakageTag::kTriggerEnd, 7);
  });
  const auto ops = parse_op_records(ev);
  ASSERT_EQ(ops.size(), 4U);
  EXPECT_EQ(ops[0].kind, OpRecord::Kind::kTrigger);
  EXPECT_EQ(ops[1].kind, OpRecord::Kind::kMul);
  EXPECT_EQ(ops[2].kind, OpRecord::Kind::kAdd);
  EXPECT_EQ(ops[3].kind, OpRecord::Kind::kTrigger);
}

TEST(OpParser, FftRecordCountIsControlFlowDetermined) {
  // Regardless of zero coefficients, an n-point FFT segments into
  // exactly (logn-1) * n/4 butterflies of 10 records each -- the
  // alignment invariant the single-trace key-load attack relies on.
  for (const unsigned logn : {3U, 5U, 6U}) {
    const std::size_t n = std::size_t{1} << logn;
    ChaCha20Prng rng(0x09A + logn);
    for (int trial = 0; trial < 3; ++trial) {
      std::vector<Fpr> f(n);
      for (auto& c : f) {
        // Mix zeros in deliberately.
        const auto v = static_cast<std::int64_t>(rng.uniform(7)) - 3;
        c = fpr::fpr_of(v);
      }
      const auto ev = capture([&] { fft::fft(f, logn); });
      const auto ops = parse_op_records(ev);
      EXPECT_EQ(ops.size(), (logn - 1) * (n / 4) * 10) << "logn=" << logn;
    }
  }
}

TEST(OpParser, EmptyStream) {
  EXPECT_TRUE(parse_op_records({}).empty());
}

}  // namespace
}  // namespace fd::sca
