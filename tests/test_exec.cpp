// The exec engine's determinism contract, pinned.
//
// Mechanics first (pool lifecycle, backpressure, nested submission,
// chunk plans, seed splitting, job-graph ordering), then the two
// end-to-end pins the rest of the repo builds on:
//   - sharded capture produces BYTE-identical merged archives at 1, 2,
//     and 7 workers (and with no pool at all);
//   - the parallel all-component attack returns results identical to
//     the serial loop at every worker count.
// Worker count must never leak into results; only the shard count (a
// config value, part of the experiment's identity) may.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "attack/hypothesis.h"
#include "attack/key_recovery.h"
#include "attack/parallel_attack.h"
#include "common/rng.h"
#include "exec/job_graph.h"
#include "exec/parallel_for.h"
#include "exec/seed_split.h"
#include "exec/thread_pool.h"
#include "falcon/falcon.h"
#include "sca/campaign.h"
#include "tracestore/archive.h"

using namespace fd;

namespace {

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) { std::remove(path.c_str()); }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

// --- ThreadPool mechanics --------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  exec::ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4U);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, BoundedQueueBackpressureDoesNotDeadlock) {
  exec::ThreadPool pool(2, /*queue_capacity=*/2);
  EXPECT_EQ(pool.queue_capacity(), 2U);
  std::atomic<int> count{0};
  // Far more tasks than capacity: submit must block-and-drain, not drop.
  for (int i = 0; i < 64; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    exec::ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, NestedSubmitRunsInlineOnWorkers) {
  exec::ThreadPool pool(1, /*queue_capacity=*/1);
  std::atomic<bool> inner_ran{false};
  std::atomic<bool> was_on_worker{false};
  pool.submit([&] {
    was_on_worker.store(exec::ThreadPool::on_worker_thread());
    // With capacity 1 and the only worker busy right here, a queued
    // nested submit could never drain -- inline execution is the
    // deadlock-freedom guarantee.
    pool.submit([&] { inner_ran.store(true); });
  });
  pool.wait_idle();
  EXPECT_TRUE(was_on_worker.load());
  EXPECT_TRUE(inner_ran.load());
  EXPECT_FALSE(exec::ThreadPool::on_worker_thread());
}

// --- static chunk plans ----------------------------------------------------

TEST(StaticChunks, CoversRangeContiguouslyLeadingHeavy) {
  const auto plan = exec::static_chunks(10, 4);  // 3,3,2,2
  ASSERT_EQ(plan.size(), 4U);
  EXPECT_EQ(plan[0].size(), 3U);
  EXPECT_EQ(plan[1].size(), 3U);
  EXPECT_EQ(plan[2].size(), 2U);
  EXPECT_EQ(plan[3].size(), 2U);
  std::size_t next = 0;
  for (const auto& c : plan) {
    EXPECT_EQ(c.begin, next);
    next = c.end;
  }
  EXPECT_EQ(next, 10U);
}

TEST(StaticChunks, NeverMakesEmptyChunks) {
  EXPECT_EQ(exec::static_chunks(3, 8).size(), 3U);
  EXPECT_EQ(exec::static_chunks(0, 4).size(), 0U);
  EXPECT_EQ(exec::static_chunks(5, 0).size(), 1U);  // hint 0 -> one chunk
}

TEST(ParallelFor, VisitsEveryIndexOnceAtAnyWorkerCount) {
  for (const std::size_t workers : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    std::unique_ptr<exec::ThreadPool> pool;
    if (workers > 0) pool = std::make_unique<exec::ThreadPool>(workers);
    std::vector<std::atomic<int>> hits(257);
    exec::parallel_for(pool.get(), hits.size(), [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, FirstExceptionInChunkOrderIsRethrown) {
  exec::ThreadPool pool(3);
  try {
    exec::parallel_for_chunks(&pool, 8, 8, [&](exec::ChunkRange r, std::size_t) {
      if (r.begin >= 2) throw std::runtime_error("chunk " + std::to_string(r.begin));
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 2");  // index order, not completion order
  }
}

TEST(ParallelReduce, MergesInChunkIndexOrder) {
  exec::ThreadPool pool(4);
  // Non-commutative merge (string concatenation) exposes any ordering
  // violation immediately.
  const std::string serial = exec::parallel_reduce<std::string>(
      nullptr, 26, 7, std::string(),
      [](exec::ChunkRange r) {
        std::string s;
        for (std::size_t i = r.begin; i < r.end; ++i) s += static_cast<char>('a' + i);
        return s;
      },
      [](std::string acc, std::string part) { return acc + part; });
  const std::string parallel = exec::parallel_reduce<std::string>(
      &pool, 26, 7, std::string(),
      [](exec::ChunkRange r) {
        std::string s;
        for (std::size_t i = r.begin; i < r.end; ++i) s += static_cast<char>('a' + i);
        return s;
      },
      [](std::string acc, std::string part) { return acc + part; });
  EXPECT_EQ(serial, "abcdefghijklmnopqrstuvwxyz");
  EXPECT_EQ(parallel, serial);
}

// --- seed splitting --------------------------------------------------------

TEST(SeedSplit, LanesAreDistinctAndStable) {
  const std::uint64_t root = 0xDE40;
  EXPECT_EQ(exec::split_seed(root, 0), exec::split_seed(root, 0));
  std::vector<std::uint64_t> seen;
  for (std::uint64_t lane = 0; lane < 64; ++lane) {
    const std::uint64_t s = exec::split_seed(root, lane);
    EXPECT_NE(s, root) << "lane " << lane;  // lane 0 must not alias the root
    for (const auto prev : seen) EXPECT_NE(s, prev);
    seen.push_back(s);
  }
  // Different roots give different lane streams.
  EXPECT_NE(exec::split_seed(1, 0), exec::split_seed(2, 0));
}

// --- JobGraph --------------------------------------------------------------

TEST(JobGraph, RespectsDependenciesAndReportsInInsertionOrder) {
  exec::ThreadPool pool(2);
  exec::JobGraph graph;
  std::vector<int> order;
  std::mutex mu;
  const auto record = [&](int id) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(id);
  };
  const auto a = graph.add("a", [&] { record(0); });
  const auto b = graph.add("b", [&] { record(1); }, {a});
  const auto c = graph.add("c", [&] { record(2); }, {a});
  graph.add("d", [&] { record(3); }, {b, c});
  const auto reports = graph.run(&pool);
  ASSERT_EQ(reports.size(), 4U);
  EXPECT_EQ(reports[0].name, "a");
  EXPECT_EQ(reports[3].name, "d");
  for (const auto& r : reports) EXPECT_TRUE(r.ran);
  ASSERT_EQ(order.size(), 4U);
  EXPECT_EQ(order.front(), 0);
  EXPECT_EQ(order.back(), 3);
}

TEST(JobGraph, FailureSkipsDownstreamAndRethrows) {
  exec::JobGraph graph;
  bool downstream_ran = false;
  const auto a = graph.add("boom", [] { throw std::runtime_error("boom"); });
  graph.add("after", [&] { downstream_ran = true; }, {a});
  EXPECT_THROW((void)graph.run(nullptr), std::runtime_error);
  EXPECT_FALSE(downstream_ran);
}

TEST(JobGraph, RejectsForwardDependencies) {
  exec::JobGraph graph;
  EXPECT_THROW(graph.add("bad", [] {}, {7}), std::invalid_argument);
}

// --- the determinism pins --------------------------------------------------

sca::ShardedCampaignConfig sharded_config(std::size_t shards) {
  sca::ShardedCampaignConfig cfg;
  cfg.base.num_traces = 90;
  cfg.base.device.noise_sigma = 2.0;
  cfg.base.seed = 0x5EED;
  cfg.num_shards = shards;
  return cfg;
}

TEST(ExecDeterminism, ShardedCaptureIsByteIdenticalAtAnyWorkerCount) {
  ChaCha20Prng rng("exec pin key");
  const auto kp = falcon::keygen(4, rng);

  // Serial reference: the same 3-shard plan, no pool.
  TempFile ref("exec_capture_ref.fdtrace");
  const auto ref_res = sca::run_campaign_sharded(kp.sk, sharded_config(3), ref.path, nullptr);
  ASSERT_TRUE(ref_res.ok) << ref_res.error;
  EXPECT_EQ(ref_res.queries, 90U);
  EXPECT_EQ(ref_res.shards, 3U);
  const std::string ref_bytes = read_file(ref.path);
  ASSERT_FALSE(ref_bytes.empty());

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    exec::ThreadPool pool(workers);
    TempFile out("exec_capture_w" + std::to_string(workers) + ".fdtrace");
    const auto res = sca::run_campaign_sharded(kp.sk, sharded_config(3), out.path, &pool);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(read_file(out.path), ref_bytes) << workers << " workers";
  }
}

TEST(ExecDeterminism, ShardCountIsPartOfTheExperimentIdentity) {
  ChaCha20Prng rng("exec pin key");
  const auto kp = falcon::keygen(4, rng);
  TempFile a("exec_shards3.fdtrace");
  TempFile b("exec_shards5.fdtrace");
  ASSERT_TRUE(sca::run_campaign_sharded(kp.sk, sharded_config(3), a.path, nullptr).ok);
  ASSERT_TRUE(sca::run_campaign_sharded(kp.sk, sharded_config(5), b.path, nullptr).ok);
  // Different shard plans are different RNG trees: the data must differ.
  EXPECT_NE(read_file(a.path), read_file(b.path));
}

TEST(ExecDeterminism, ParallelComponentAttackMatchesSerialExactly) {
  ChaCha20Prng rng("exec attack pin");
  const auto kp = falcon::keygen(3, rng);

  sca::CampaignConfig camp;
  camp.num_traces = 350;
  camp.device.noise_sigma = 2.0;
  camp.seed = 0xA77;
  const auto sets = sca::run_full_campaign(kp.sk, camp);

  attack::KeyRecoveryConfig cfg;
  cfg.seed = 0xA77;
  cfg.adversarial_random = 40;
  const auto config_for = [&](const attack::ComponentIndex& ci) {
    return attack::component_attack_config(kp.sk, cfg, /*row=*/0, ci.slot, ci.imag);
  };

  const auto serial = attack::attack_all_components_serial(sets, config_for);
  ASSERT_EQ(serial.size(), kp.sk.params.n);

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    exec::ThreadPool pool(workers);
    const auto parallel = attack::attack_all_components_parallel(sets, config_for, &pool);
    ASSERT_EQ(parallel.size(), serial.size()) << workers << " workers";
    for (std::size_t idx = 0; idx < serial.size(); ++idx) {
      EXPECT_EQ(parallel[idx].bits, serial[idx].bits)
          << workers << " workers, component " << idx;
      EXPECT_EQ(parallel[idx].sign, serial[idx].sign);
      EXPECT_EQ(parallel[idx].exponent, serial[idx].exponent);
      EXPECT_EQ(parallel[idx].x0, serial[idx].x0);
      EXPECT_EQ(parallel[idx].x1, serial[idx].x1);
    }
  }
}

TEST(ExecDeterminism, ArchiveAttackAndStreamingManyMatchSerial) {
  ChaCha20Prng rng("exec archive pin");
  const auto kp = falcon::keygen(3, rng);
  const std::size_t hn = kp.sk.params.n >> 1;

  TempFile archive("exec_archive_pin.fdtrace");
  sca::CampaignConfig camp;
  camp.num_traces = 350;
  camp.device.noise_sigma = 2.0;
  camp.seed = 0xA78;
  ASSERT_TRUE(sca::run_campaign_to_archive(kp.sk, camp, archive.path).ok);

  attack::KeyRecoveryConfig cfg;
  cfg.seed = 0xA78;
  cfg.adversarial_random = 40;
  const auto config_for = [&](const attack::ComponentIndex& ci) {
    return attack::component_attack_config(kp.sk, cfg, /*row=*/0, ci.slot, ci.imag);
  };

  std::vector<attack::ComponentResult> serial, parallel;
  std::string error;
  ASSERT_TRUE(attack::attack_all_components_from_archive(archive.path, config_for, nullptr,
                                                         serial, &error))
      << error;
  exec::ThreadPool pool(2);
  ASSERT_TRUE(attack::attack_all_components_from_archive(archive.path, config_for, &pool,
                                                         parallel, &error))
      << error;
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t idx = 0; idx < serial.size(); ++idx) {
    EXPECT_EQ(parallel[idx].bits, serial[idx].bits) << "component " << idx;
  }

  // run_cpa_streaming_many == one run_cpa_streaming per spec.
  std::vector<attack::StreamingCpaSpec> specs;
  for (std::size_t slot = 0; slot < hn; ++slot) {
    const auto truth = attack::KnownOperand::from(kp.sk.b01[slot]);
    attack::StreamingCpaSpec spec;
    spec.slot = slot;
    spec.sample_offsets = {sca::window::kOffAccZ1a};
    spec.guesses = attack::MantissaCandidates::adversarial(truth.y0, false, 20, 0xA78 + slot);
    spec.model = [](std::uint32_t guess, const attack::KnownOperand& k) {
      return attack::hyp_low_add_z1a(guess, k);
    };
    specs.push_back(std::move(spec));
  }
  std::vector<attack::CpaEngine> many;
  ASSERT_TRUE(attack::run_cpa_streaming_many(archive.path, specs, &pool, many, &error))
      << error;
  ASSERT_EQ(many.size(), specs.size());
  for (std::size_t slot = 0; slot < specs.size(); ++slot) {
    tracestore::ArchiveReader reader;
    ASSERT_TRUE(reader.open(archive.path));
    const auto one = attack::run_cpa_streaming(reader, specs[slot]);
    EXPECT_EQ(many[slot].ranking(), one.ranking()) << "slot " << slot;
    for (std::size_t g = 0; g < specs[slot].guesses.size(); ++g) {
      EXPECT_EQ(many[slot].peak(g), one.peak(g)) << "slot " << slot << " guess " << g;
    }
  }
}

}  // namespace
