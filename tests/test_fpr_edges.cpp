// Soft-float edge cases beyond the random sweeps of test_fpr.cpp:
// rounding boundaries, subnormal flushes, extreme exponents, and known
// bit-exact vectors.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "common/rng.h"
#include "fpr/fpr.h"

namespace fd::fpr {
namespace {

std::uint64_t hw_bits(double d) { return std::bit_cast<std::uint64_t>(d); }

TEST(FprEdges, KnownVectors) {
  EXPECT_EQ(fpr_mul(kOne, kOne).bits(), hw_bits(1.0));
  EXPECT_EQ(fpr_add(kOne, kOne).bits(), hw_bits(2.0));
  EXPECT_EQ(fpr_mul(Fpr::from_double(0.1), Fpr::from_double(10.0)).bits(), hw_bits(0.1 * 10.0));
  EXPECT_EQ(fpr_div(kOne, Fpr::from_double(3.0)).bits(), hw_bits(1.0 / 3.0));
  EXPECT_EQ(fpr_sqrt(Fpr::from_double(2.0)).bits(), hw_bits(std::sqrt(2.0)));
  EXPECT_EQ(fpr_sub(Fpr::from_double(1.0), Fpr::from_double(1e-17)).bits(),
            hw_bits(1.0 - 1e-17));
}

TEST(FprEdges, RoundToNearestEvenTies) {
  // Construct exact-tie products: (2^52 + 1) * (1 + 2^-52) has a mantissa
  // product with the round bit set and sticky clear in specific spots.
  // Rather than hand-derive, sweep neighbors of the 53-bit boundary and
  // require bit-exact agreement with the FPU (which is RNE).
  for (std::uint64_t m = 0; m < 64; ++m) {
    const double a = std::bit_cast<double>((std::uint64_t{1023} << 52) | m);  // 1.0 + tiny
    const double b = std::bit_cast<double>((std::uint64_t{1023} << 52) | (1ULL << 51) | m);
    EXPECT_EQ(fpr_mul(Fpr::from_double(a), Fpr::from_double(b)).bits(), hw_bits(a * b));
    EXPECT_EQ(fpr_add(Fpr::from_double(a), Fpr::from_double(b)).bits(), hw_bits(a + b));
  }
}

TEST(FprEdges, HalfUlpAdditionBoundary) {
  // 1.0 + 2^-53 is an exact tie -> rounds to 1.0 (even); 1.0 + 2^-52 is
  // exact; 1.0 + 1.5*2^-53 rounds up.
  const double one = 1.0;
  EXPECT_EQ(fpr_add(Fpr::from_double(one), Fpr::from_double(0x1.0p-53)).bits(), hw_bits(1.0));
  EXPECT_EQ(fpr_add(Fpr::from_double(one), Fpr::from_double(0x1.0p-52)).bits(),
            hw_bits(1.0 + 0x1.0p-52));
  EXPECT_EQ(fpr_add(Fpr::from_double(one), Fpr::from_double(0x1.8p-53)).bits(),
            hw_bits(1.0 + 0x1.8p-53));
}

TEST(FprEdges, SubnormalInputsFlushToZero) {
  const double sub = std::bit_cast<double>(std::uint64_t{0x000FFFFFFFFFFFFF});
  EXPECT_EQ(fpr_mul(Fpr::from_double(sub), Fpr::from_double(2.0)).to_double(), 0.0);
  EXPECT_EQ(fpr_add(Fpr::from_double(sub), Fpr::from_double(0.0)).to_double(), 0.0);
  // FPEMU treats subnormals as zero even when the FPU would not.
  EXPECT_EQ(fpr_div(Fpr::from_double(sub), Fpr::from_double(2.0)).to_double(), 0.0);
}

TEST(FprEdges, UnderflowingResultsFlushToZero) {
  const double tiny = std::bit_cast<double>(std::uint64_t{1} << 52);  // smallest normal
  const Fpr r = fpr_mul(Fpr::from_double(tiny), Fpr::from_double(0.25));
  EXPECT_EQ(r.to_double(), 0.0);
}

TEST(FprEdges, NegativeZeroHandling) {
  const Fpr nz = Fpr::from_double(-0.0);
  EXPECT_TRUE(nz.sign());
  EXPECT_TRUE(nz.is_zero());
  EXPECT_EQ(fpr_mul(nz, Fpr::from_double(5.0)).bits(), hw_bits(-0.0));
  EXPECT_EQ(fpr_neg(nz).bits(), hw_bits(0.0));
  EXPECT_EQ(fpr_rint(nz), 0);
  EXPECT_EQ(fpr_floor(nz), 0);
}

TEST(FprEdges, RintBoundaries) {
  EXPECT_EQ(fpr_rint(Fpr::from_double(0.49999999999999994)), 0);
  EXPECT_EQ(fpr_rint(Fpr::from_double(0.5000000000000001)), 1);
  EXPECT_EQ(fpr_rint(Fpr::from_double(4503599627370495.5)), 4503599627370496LL);  // 2^52-0.5
  EXPECT_EQ(fpr_rint(Fpr::from_double(-2.5)), -2);
  EXPECT_EQ(fpr_rint(Fpr::from_double(-3.5)), -4);
  // Large integers are exact.
  EXPECT_EQ(fpr_rint(Fpr::from_double(0x1.0p62)), std::int64_t{1} << 62);
}

TEST(FprEdges, FloorTruncLargeMagnitudes) {
  EXPECT_EQ(fpr_floor(Fpr::from_double(-0.0001)), -1);
  EXPECT_EQ(fpr_trunc(Fpr::from_double(-0.9999)), 0);
  EXPECT_EQ(fpr_floor(Fpr::from_double(-123456789.0)), -123456789);
  EXPECT_EQ(fpr_trunc(Fpr::from_double(0x1.fffffffffffffp51)),
            static_cast<std::int64_t>(std::trunc(0x1.fffffffffffffp51)));
}

TEST(FprEdges, ScaledExtremes) {
  EXPECT_EQ(fpr_scaled(1, -1074).to_double(), 0.0);  // subnormal -> flush
  EXPECT_EQ(fpr_scaled(1, -1022).to_double(), 0x1.0p-1022);
  EXPECT_EQ(fpr_scaled(INT64_MIN, 0).to_double(), -0x1.0p63);
  EXPECT_EQ(fpr_scaled(INT64_MAX, 0).to_double(), static_cast<double>(INT64_MAX));
}

TEST(FprEdges, LtTotalOrderish) {
  const double vals[] = {-1e300, -2.5, -0.0, 0.0, 1e-300, 3.25, 1e300};
  for (const double a : vals) {
    for (const double b : vals) {
      if (a == 0.0 && b == 0.0) continue;  // -0 < +0 in our order
      EXPECT_EQ(fpr_lt(Fpr::from_double(a), Fpr::from_double(b)), a < b)
          << a << " " << b;
    }
  }
  EXPECT_TRUE(fpr_lt(Fpr::from_double(-0.0), Fpr::from_double(0.0)));
}

TEST(FprEdges, MulExtremeExponentCombos) {
  // Products near the top/bottom of the normal range, against the FPU.
  ChaCha20Prng rng(0xF101);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t ea = 1 + rng.uniform(300);
    const std::uint64_t eb = 1746 + rng.uniform(300);  // ea+eb ~ 2046..2346
    const double a = std::bit_cast<double>((ea << 52) | (rng.next_u64() & 0xFFFFFFFFFFFFF));
    const double b = std::bit_cast<double>((eb << 52) | (rng.next_u64() & 0xFFFFFFFFFFFFF));
    const double expect = a * b;
    if (!std::isfinite(expect) || std::fpclassify(expect) == FP_SUBNORMAL || expect == 0.0) {
      continue;  // FPEMU overflow behaviour is unspecified
    }
    EXPECT_EQ(fpr_mul(Fpr::from_double(a), Fpr::from_double(b)).bits(), hw_bits(expect));
  }
}

TEST(FprEdges, ExpmSaturatedCcs) {
  // ccs == 1 exactly (sigma' == sigma_min) saturates the fixed-point
  // scale and must behave like ccs -> 1, not wrap to 0.
  const std::uint64_t at_one = fpr_expm_p63(Fpr::from_double(0.25), kOne);
  const std::uint64_t near_one =
      fpr_expm_p63(Fpr::from_double(0.25), Fpr::from_double(0.999999999));
  EXPECT_NEAR(static_cast<double>(at_one), static_cast<double>(near_one),
              static_cast<double>(near_one) * 1e-6);
  EXPECT_GT(at_one, std::uint64_t{1} << 62);  // ~ 0.78 * 2^63
}

TEST(FprEdges, PaperCoefficientDecomposition) {
  // The decomposition quoted in the paper for 0xC06017BC8036B580:
  // sign 1, exponent 0x406, mantissa 0x017BC8036B580 with high/low
  // split 0x00BDE40 / 0x36B580 -- note the paper's "higher-order bits"
  // elide the hidden bit; with it, x1 = 0x80BDE40.
  const Fpr x = Fpr::from_bits(0xC06017BC8036B580ULL);
  EXPECT_TRUE(x.sign());
  EXPECT_EQ(x.biased_exponent(), 0x406U);
  EXPECT_EQ(x.mantissa_field(), 0x017BC8036B580ULL);
  const auto st = mul_mantissa_steps(x.significand(), x.significand());
  EXPECT_EQ(st.x0, 0x036B580U);
  EXPECT_EQ(st.x1 & 0x07FFFFFFU, 0x00BDE40U);  // paper's value, sans hidden bit
  EXPECT_EQ(st.x1, 0x80BDE40U);
}

}  // namespace
}  // namespace fd::fpr
