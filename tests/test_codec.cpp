// Codec round trips and strict-rejection behaviour.

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "falcon/falcon.h"

namespace fd::falcon {
namespace {

TEST(Codec, CompressRoundTripRandom) {
  ChaCha20Prng rng(0x9001);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 64;
    std::vector<std::int16_t> s2(n);
    for (auto& c : s2) {
      // Typical falcon magnitudes: a few hundred.
      c = static_cast<std::int16_t>(static_cast<std::int64_t>(rng.uniform(801)) - 400);
    }
    const auto bytes = compress_s2(s2, 200);
    ASSERT_TRUE(bytes.has_value());
    EXPECT_EQ(bytes->size(), 200U);
    const auto back = decompress_s2(*bytes, n);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, s2);
  }
}

TEST(Codec, CompressEdgeMagnitudes) {
  const std::vector<std::int16_t> s2 = {0, 1, -1, 127, -127, 128, -128, 2047, -2047};
  const auto bytes = compress_s2(s2, 64);
  ASSERT_TRUE(bytes.has_value());
  const auto back = decompress_s2(*bytes, s2.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, s2);
}

TEST(Codec, CompressRejectsOutOfRange) {
  EXPECT_FALSE(compress_s2(std::vector<std::int16_t>{2048}, 64).has_value());
  EXPECT_FALSE(compress_s2(std::vector<std::int16_t>{-2048}, 64).has_value());
}

TEST(Codec, CompressRejectsOverflow) {
  // 64 coefficients of magnitude 2047 need ~24 bits each: way over 32 bytes.
  std::vector<std::int16_t> s2(64, 2047);
  EXPECT_FALSE(compress_s2(s2, 32).has_value());
}

TEST(Codec, DecompressRejectsMalformed) {
  const std::vector<std::int16_t> s2 = {5, -3, 0, 44};
  const auto good = compress_s2(s2, 16);
  ASSERT_TRUE(good.has_value());

  // Nonzero padding.
  auto bad_pad = *good;
  bad_pad.back() |= 0x01;
  EXPECT_FALSE(decompress_s2(bad_pad, s2.size()).has_value());

  // Truncated stream.
  const std::vector<std::uint8_t> truncated(good->begin(), good->begin() + 2);
  EXPECT_FALSE(decompress_s2(truncated, s2.size()).has_value());

  // Negative zero: sign=1, mag bits all zero, unary terminator.
  // First 9 bits: 1 0000000 1 -> bytes 0x80, 0x80 then zero padding.
  std::vector<std::uint8_t> neg_zero = {0x80, 0x80, 0x00, 0x00};
  EXPECT_FALSE(decompress_s2(neg_zero, 1).has_value());
}

TEST(Codec, SignatureContainerRoundTrip) {
  ChaCha20Prng rng(0x9002);
  const KeyPair kp = keygen(4, rng);
  const Signature sig = sign(kp.sk, "container", rng);
  const auto bytes = encode_signature(sig, kp.pk.params);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(bytes->size(), kp.pk.params.sig_bytes);
  const auto back = decode_signature(*bytes, kp.pk.params);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->s2, sig.s2);
  EXPECT_EQ(std::memcmp(back->salt, sig.salt, kSaltBytes), 0);
  EXPECT_TRUE(verify(kp.pk, "container", *back));

  // Wrong header byte.
  auto bad = *bytes;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(decode_signature(bad, kp.pk.params).has_value());
  // Wrong length.
  bad = *bytes;
  bad.pop_back();
  EXPECT_FALSE(decode_signature(bad, kp.pk.params).has_value());
}

TEST(Codec, PublicKeyRoundTrip) {
  ChaCha20Prng rng(0x9003);
  const KeyPair kp = keygen(5, rng);
  const auto bytes = encode_public_key(kp.pk);
  EXPECT_EQ(bytes.size(), 1 + (kp.pk.params.n * 14 + 7) / 8);
  const auto back = decode_public_key(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->h, kp.pk.h);
  EXPECT_EQ(back->params.logn, kp.pk.params.logn);

  auto bad = bytes;
  bad[0] = 77;  // invalid logn
  EXPECT_FALSE(decode_public_key(bad).has_value());
  bad = bytes;
  bad.pop_back();
  EXPECT_FALSE(decode_public_key(bad).has_value());
}

TEST(Codec, PublicKeyRejectsOutOfRangeCoefficient) {
  ChaCha20Prng rng(0x9004);
  KeyPair kp = keygen(4, rng);
  kp.pk.h[0] = 12289;  // == q: invalid
  const auto bytes = encode_public_key(kp.pk);
  EXPECT_FALSE(decode_public_key(bytes).has_value());
}

TEST(Codec, SecretKeyRoundTripAndSigning) {
  ChaCha20Prng rng(0x9005);
  const KeyPair kp = keygen(4, rng);
  const auto bytes = encode_secret_key(kp.sk);
  const auto back = decode_secret_key(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->f, kp.sk.f);
  EXPECT_EQ(back->g, kp.sk.g);
  EXPECT_EQ(back->big_f, kp.sk.big_f);
  EXPECT_EQ(back->big_g, kp.sk.big_g);

  // The re-expanded key must sign verifiably.
  const Signature sig = sign(*back, "re-expanded", rng);
  EXPECT_TRUE(verify(kp.pk, "re-expanded", sig));
}

TEST(Codec, SecretKeyRejectsBadInput) {
  EXPECT_FALSE(decode_secret_key(std::vector<std::uint8_t>{}).has_value());
  EXPECT_FALSE(decode_secret_key(std::vector<std::uint8_t>{0x54, 1, 2}).has_value());
  // Header claims logn=4 but all-zero polynomials fail expansion.
  std::vector<std::uint8_t> zeros(1 + 8 * 16, 0);
  zeros[0] = 0x54;
  EXPECT_FALSE(decode_secret_key(zeros).has_value());
}

class CompactSkParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(CompactSkParam, RoundTripAndSmaller) {
  const unsigned logn = GetParam();
  ChaCha20Prng rng(0x9100 + logn);
  const KeyPair kp = keygen(logn, rng);

  const auto compact = encode_secret_key_compact(kp.sk);
  const auto plain = encode_secret_key(kp.sk);
  EXPECT_LT(compact.size(), plain.size());

  const auto back = decode_secret_key_compact(compact);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->f, kp.sk.f);
  EXPECT_EQ(back->g, kp.sk.g);
  EXPECT_EQ(back->big_f, kp.sk.big_f);
  EXPECT_EQ(back->big_g, kp.sk.big_g);

  const Signature sig = sign(*back, "compact key", rng);
  EXPECT_TRUE(verify(kp.pk, "compact key", sig));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompactSkParam, ::testing::Values(3U, 5U, 7U));

TEST(Codec, CompactSkRejectsMalformed) {
  ChaCha20Prng rng(0x9200);
  const KeyPair kp = keygen(4, rng);
  const auto good = encode_secret_key_compact(kp.sk);

  EXPECT_FALSE(decode_secret_key_compact(std::vector<std::uint8_t>{}).has_value());
  auto bad = good;
  bad[0] = 0x50 + 4;  // wrong container tag
  EXPECT_FALSE(decode_secret_key_compact(bad).has_value());
  bad = good;
  bad.pop_back();
  EXPECT_FALSE(decode_secret_key_compact(bad).has_value());
  bad = good;
  bad.push_back(0);
  EXPECT_FALSE(decode_secret_key_compact(bad).has_value());
  bad = good;
  bad[1] = 1;  // width below minimum
  EXPECT_FALSE(decode_secret_key_compact(bad).has_value());
}

TEST(Codec, CompactSkFalcon512Size) {
  ChaCha20Prng rng(0x9300);
  const KeyPair kp = keygen(9, rng);
  const auto compact = encode_secret_key_compact(kp.sk);
  // f, g at <= 7 bits, F, G at <= 12 bits: well under half of the
  // 16-bit container (1 + 8*512 = 4097 bytes).
  EXPECT_LT(compact.size(), 2600U);
  const auto back = decode_secret_key_compact(compact);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->f, kp.sk.f);
}

}  // namespace
}  // namespace fd::falcon
