// BigInt unit + property tests. The NTRUSolve recursion depends on exact
// multi-thousand-bit arithmetic, so these exercise carries, Knuth-D
// division corner cases, Karatsuba thresholds, and xgcd identities.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "common/bigint.h"
#include "common/rng.h"

namespace fd {
namespace {

BigInt random_bigint(RandomSource& rng, std::size_t max_bits) {
  const std::size_t bits = 1 + rng.uniform(max_bits);
  BigInt r;
  for (std::size_t i = 0; i < (bits + 31) / 32; ++i) {
    r <<= 32;
    r += BigInt(static_cast<std::int64_t>(rng.next_u64() & 0xFFFFFFFFULL));
  }
  r >>= (r.bit_length() > bits ? r.bit_length() - bits : 0);
  if (rng.next_u8() & 1) r = -r;
  return r;
}

TEST(BigInt, SmallValues) {
  EXPECT_TRUE(BigInt(0).is_zero());
  EXPECT_EQ(BigInt(42).to_int64(), 42);
  EXPECT_EQ(BigInt(-42).to_int64(), -42);
  EXPECT_EQ(BigInt(INT64_MIN).to_int64(), INT64_MIN);
  EXPECT_EQ(BigInt(INT64_MAX).to_int64(), INT64_MAX);
  EXPECT_EQ((BigInt(5) + BigInt(-7)).to_int64(), -2);
  EXPECT_EQ((BigInt(-5) * BigInt(-7)).to_int64(), 35);
}

TEST(BigInt, DecimalRoundTrip) {
  const std::string s = "-123456789012345678901234567890123456789";
  EXPECT_EQ(BigInt::from_decimal(s).to_decimal(), s);
  EXPECT_EQ(BigInt::from_decimal("0").to_decimal(), "0");
  EXPECT_EQ(BigInt::from_decimal("-0").to_decimal(), "0");
  EXPECT_THROW(BigInt::from_decimal(""), std::invalid_argument);
  EXPECT_THROW(BigInt::from_decimal("12x"), std::invalid_argument);
}

TEST(BigInt, AddSubPropertiesInt64Oracle) {
  ChaCha20Prng rng(0x2001);
  for (int i = 0; i < 20000; ++i) {
    const std::int64_t a = static_cast<std::int64_t>(rng.next_u64()) >> 2;
    const std::int64_t b = static_cast<std::int64_t>(rng.next_u64()) >> 2;
    EXPECT_EQ((BigInt(a) + BigInt(b)).to_int64(), a + b);
    EXPECT_EQ((BigInt(a) - BigInt(b)).to_int64(), a - b);
  }
}

TEST(BigInt, MulInt64Oracle) {
  ChaCha20Prng rng(0x2002);
  for (int i = 0; i < 20000; ++i) {
    const std::int64_t a = static_cast<std::int64_t>(rng.next_u64()) >> 33;
    const std::int64_t b = static_cast<std::int64_t>(rng.next_u64()) >> 33;
    EXPECT_EQ((BigInt(a) * BigInt(b)).to_int64(), a * b);
  }
}

TEST(BigInt, AlgebraicProperties) {
  ChaCha20Prng rng(0x2003);
  for (int i = 0; i < 300; ++i) {
    const BigInt a = random_bigint(rng, 2500);
    const BigInt b = random_bigint(rng, 2500);
    const BigInt c = random_bigint(rng, 600);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) * c, a * c + b * c);
    EXPECT_EQ(a - a, BigInt(0));
    EXPECT_EQ((a * b) + (a * c), a * (b + c));
  }
}

TEST(BigInt, KaratsubaMatchesSchoolbookSizes) {
  // Cross the Karatsuba threshold with structured values: (2^k - 1)^2 =
  // 2^(2k) - 2^(k+1) + 1.
  for (const std::size_t k : {64U, 256U, 1024U, 4096U, 8192U}) {
    BigInt x = BigInt(1);
    x <<= k;
    x -= BigInt(1);
    const BigInt sq = x * x;
    BigInt expect = BigInt(1);
    expect <<= 2 * k;
    BigInt mid = BigInt(1);
    mid <<= k + 1;
    expect -= mid;
    expect += BigInt(1);
    EXPECT_EQ(sq, expect) << "k=" << k;
  }
}

TEST(BigInt, ShiftRoundTrip) {
  ChaCha20Prng rng(0x2004);
  for (int i = 0; i < 2000; ++i) {
    const BigInt a = random_bigint(rng, 1000);
    const std::size_t s = rng.uniform(200);
    BigInt shifted = a << s;
    EXPECT_EQ(shifted >> s, a);
    EXPECT_EQ((a << s).bit_length(), a.is_zero() ? 0 : a.bit_length() + s);
  }
}

TEST(BigInt, DivModInvariant) {
  ChaCha20Prng rng(0x2005);
  for (int i = 0; i < 3000; ++i) {
    const BigInt a = random_bigint(rng, 1200);
    BigInt b = random_bigint(rng, 1 + rng.uniform(1200));
    if (b.is_zero()) b = BigInt(1);
    const auto [q, r] = BigInt::divmod(a, b);
    EXPECT_EQ(q * b + r, a);
    // |r| < |b| and r has the dividend's sign (or is zero).
    BigInt abs_r = r.is_negative() ? -r : r;
    BigInt abs_b = b.is_negative() ? -b : b;
    EXPECT_LT(abs_r, abs_b);
    if (!r.is_zero()) {
      EXPECT_EQ(r.is_negative(), a.is_negative());
    }
  }
}

TEST(BigInt, DivByZeroThrows) {
  EXPECT_THROW((void)BigInt::divmod(BigInt(5), BigInt(0)), std::domain_error);
}

TEST(BigInt, KnuthDAddBackCase) {
  // Divisors with all-ones top limbs provoke the rare "add back" branch.
  BigInt num = BigInt(1);
  num <<= 192;
  num -= BigInt(1);
  BigInt den = BigInt(1);
  den <<= 96;
  den -= BigInt(1);
  const auto [q, r] = BigInt::divmod(num, den);
  EXPECT_EQ(q * den + r, num);
}

TEST(BigInt, Xgcd) {
  ChaCha20Prng rng(0x2006);
  for (int i = 0; i < 1000; ++i) {
    const BigInt a = random_bigint(rng, 400);
    const BigInt b = random_bigint(rng, 400);
    if (a.is_zero() && b.is_zero()) continue;
    const auto [g, u, v] = BigInt::xgcd(a, b);
    EXPECT_FALSE(g.is_negative());
    EXPECT_EQ(u * a + v * b, g);
    if (!a.is_zero()) {
      EXPECT_TRUE((a % g).is_zero());
    }
    if (!b.is_zero()) {
      EXPECT_TRUE((b % g).is_zero());
    }
  }
}

TEST(BigInt, XgcdCoprime) {
  const auto [g, u, v] = BigInt::xgcd(BigInt(240), BigInt(46));
  EXPECT_EQ(g.to_int64(), 2);
  EXPECT_EQ((u * BigInt(240) + v * BigInt(46)).to_int64(), 2);
}

TEST(BigInt, ToDoubleScaled) {
  ChaCha20Prng rng(0x2007);
  for (int i = 0; i < 2000; ++i) {
    const BigInt a = random_bigint(rng, 900);
    if (a.is_zero()) continue;
    int e = 0;
    const double m = a.to_double_scaled(e);
    const double mag = std::fabs(m);
    EXPECT_GE(mag, 0x1.0p52);
    EXPECT_LT(mag, 0x1.0p53);
    if (e <= 0) {
      // Value has at most 53 bits: the conversion is exact.
      EXPECT_EQ(std::ldexp(m, e), a.to_double());
      BigInt exact = BigInt(static_cast<std::int64_t>(std::ldexp(m, e)));
      EXPECT_EQ(exact, a);
    } else {
      // Truncation toward zero: |m*2^e - a| < 2^e.
      BigInt approx = BigInt(static_cast<std::int64_t>(m));
      approx <<= static_cast<std::size_t>(e);
      BigInt diff = a - approx;
      if (diff.is_negative()) diff = -diff;
      EXPECT_LE(diff.bit_length(), static_cast<std::size_t>(e));
    }
  }
}

TEST(BigInt, ToDoubleSmall) {
  EXPECT_EQ(BigInt(12345).to_double(), 12345.0);
  EXPECT_EQ(BigInt(-3).to_double(), -3.0);
  EXPECT_EQ(BigInt(0).to_double(), 0.0);
}

TEST(BigInt, BitAccessors) {
  BigInt x = BigInt(0b1011);
  EXPECT_TRUE(x.bit(0));
  EXPECT_TRUE(x.bit(1));
  EXPECT_FALSE(x.bit(2));
  EXPECT_TRUE(x.bit(3));
  EXPECT_FALSE(x.bit(64));
  EXPECT_EQ(x.bit_length(), 4U);
  EXPECT_TRUE(x.is_odd());
  EXPECT_FALSE(BigInt(4).is_odd());
}

TEST(BigInt, Comparisons) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_GT(BigInt(7), BigInt(3));
  EXPECT_EQ(BigInt(0), BigInt(0));
  BigInt big = BigInt(1);
  big <<= 100;
  EXPECT_GT(big, BigInt(INT64_MAX));
  EXPECT_LT(-big, BigInt(INT64_MIN));
}

TEST(BigInt, Int64Bounds) {
  BigInt just_over = BigInt(INT64_MAX);
  just_over += BigInt(1);
  EXPECT_FALSE(just_over.fits_int64());
  EXPECT_THROW((void)just_over.to_int64(), std::overflow_error);
  EXPECT_TRUE((-just_over).fits_int64());  // INT64_MIN
  EXPECT_EQ((-just_over).to_int64(), INT64_MIN);
}

}  // namespace
}  // namespace fd
