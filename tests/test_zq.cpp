// Z_q arithmetic and NTT: inversion, convolution oracle, invertibility.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "zq/zq.h"

namespace fd::zq {
namespace {

std::vector<std::uint32_t> random_poly(RandomSource& rng, unsigned logn) {
  std::vector<std::uint32_t> f(std::size_t{1} << logn);
  for (auto& c : f) c = static_cast<std::uint32_t>(rng.uniform(kQ));
  return f;
}

// Naive negacyclic convolution mod q.
std::vector<std::uint32_t> negacyclic_mul(std::span<const std::uint32_t> a,
                                          std::span<const std::uint32_t> b) {
  const std::size_t n = a.size();
  std::vector<std::int64_t> acc(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::int64_t p = static_cast<std::int64_t>(a[i]) * b[j];
      const std::size_t k = i + j;
      if (k < n) {
        acc[k] += p;
      } else {
        acc[k - n] -= p;
      }
    }
  }
  std::vector<std::uint32_t> r(n);
  for (std::size_t i = 0; i < n; ++i) r[i] = from_signed(acc[i]);
  return r;
}

TEST(Zq, ScalarOps) {
  EXPECT_EQ(add(kQ - 1, 1), 0U);
  EXPECT_EQ(sub(0, 1), kQ - 1);
  EXPECT_EQ(mul(kQ - 1, kQ - 1), 1U);
  EXPECT_EQ(pow(7, 0), 1U);
  EXPECT_EQ(pow(7, 1), 7U);
  EXPECT_EQ(mul(inverse(5), 5), 1U);
  EXPECT_EQ(center(0), 0);
  EXPECT_EQ(center(1), 1);
  EXPECT_EQ(center(kQ - 1), -1);
  EXPECT_EQ(from_signed(-1), kQ - 1);
  EXPECT_EQ(from_signed(-static_cast<std::int64_t>(kQ) * 3 - 5), kQ - 5);
}

TEST(Zq, InverseAll) {
  // Fermat inversion is total on [1, q): spot check a spread.
  for (std::uint32_t a = 1; a < kQ; a += 97) {
    EXPECT_EQ(mul(a, inverse(a)), 1U) << a;
  }
}

class ZqNttParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(ZqNttParam, InttUndoesNtt) {
  const unsigned logn = GetParam();
  ChaCha20Prng rng(0x5000 + logn);
  const auto f = random_poly(rng, logn);
  auto t = f;
  ntt(t, logn);
  intt(t, logn);
  EXPECT_EQ(t, f);
}

TEST_P(ZqNttParam, PolyMulMatchesConvolution) {
  const unsigned logn = GetParam();
  ChaCha20Prng rng(0x5100 + logn);
  const auto a = random_poly(rng, logn);
  const auto b = random_poly(rng, logn);
  EXPECT_EQ(poly_mul(a, b, logn), negacyclic_mul(a, b));
}

TEST_P(ZqNttParam, PolyInverse) {
  const unsigned logn = GetParam();
  ChaCha20Prng rng(0x5200 + logn);
  for (int attempt = 0; attempt < 10; ++attempt) {
    const auto a = random_poly(rng, logn);
    const auto inv = poly_inverse(a, logn);
    if (inv.empty()) {
      EXPECT_FALSE(poly_invertible(a, logn));
      continue;
    }
    EXPECT_TRUE(poly_invertible(a, logn));
    const auto prod = poly_mul(a, inv, logn);
    std::vector<std::uint32_t> one(std::size_t{1} << logn, 0);
    one[0] = 1;
    EXPECT_EQ(prod, one);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ZqNttParam, ::testing::Values(1U, 2U, 4U, 6U, 8U, 9U, 10U));

TEST(Zq, MulByXIsNegacyclicShift) {
  // (x^(n-1) * x) mod (x^n + 1) == -1.
  constexpr unsigned logn = 4;
  constexpr std::size_t n = 1U << logn;
  std::vector<std::uint32_t> a(n, 0), b(n, 0);
  a[n - 1] = 1;
  b[1] = 1;
  const auto r = poly_mul(a, b, logn);
  EXPECT_EQ(r[0], kQ - 1);
  for (std::size_t i = 1; i < n; ++i) EXPECT_EQ(r[i], 0U);
}

TEST(Zq, NonInvertibleDetected) {
  // f(x) = 0 is trivially non-invertible.
  std::vector<std::uint32_t> zero(16, 0);
  EXPECT_FALSE(poly_invertible(zero, 4));
  EXPECT_TRUE(poly_inverse(zero, 4).empty());
}

}  // namespace
}  // namespace fd::zq
