// Trace-archive format tests: byte-exact roundtrip, header gating,
// damage recovery (corrupt chunks, truncated tails), shard merging, and
// the bounded-memory reading contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tracestore/archive.h"

namespace fd::tracestore {
namespace {

constexpr std::size_t kSamples = 10;
constexpr std::size_t kTracesPerChunk = 8;

ArchiveMeta small_meta() {
  ArchiveMeta m;
  m.logn = 4;
  m.row = 0;
  m.num_slots = 8;
  m.samples_per_trace = kSamples;
  m.traces_per_chunk = kTracesPerChunk;
  m.alpha = 1.0;
  m.noise_sigma = 2.0;
  m.seed = 0x5EED;
  return m;
}

TraceRecord make_record(std::uint32_t i, ChaCha20Prng& rng) {
  TraceRecord r;
  r.slot = i % 8;
  r.index = i / 8;
  r.known_re_bits = rng.next_u64();
  r.known_im_bits = rng.next_u64();
  r.samples.resize(kSamples);
  for (auto& s : r.samples) s = static_cast<float>(rng.gaussian());
  return r;
}

// Writes `count` deterministic records and returns them.
std::vector<TraceRecord> write_archive(const std::string& path, std::size_t count,
                                       std::uint64_t seed = 0xA7C41) {
  ChaCha20Prng rng(seed);
  std::vector<TraceRecord> recs;
  ArchiveWriter writer;
  EXPECT_TRUE(writer.open(path, small_meta())) << writer.error();
  for (std::size_t i = 0; i < count; ++i) {
    recs.push_back(make_record(static_cast<std::uint32_t>(i), rng));
    EXPECT_TRUE(writer.append(recs.back())) << writer.error();
  }
  EXPECT_TRUE(writer.close()) << writer.error();
  return recs;
}

// In-place byte surgery on an archive file.
void patch_file(const std::string& path, long offset, std::uint8_t xor_mask) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  std::fputc(c ^ xor_mask, f);
  std::fclose(f);
}

void truncate_file(const std::string& path, long new_size) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<char> bytes(static_cast<std::size_t>(new_size));
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

std::size_t chunk_offset(std::size_t chunk) {
  return kHeaderBytes + chunk * (kChunkHeaderBytes + kTracesPerChunk * (24 + 4 * kSamples));
}

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) { std::remove(path.c_str()); }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(Crc32, KnownVector) {
  const char* s = "123456789";
  EXPECT_EQ(crc32({reinterpret_cast<const std::uint8_t*>(s), 9}), 0xCBF43926U);
}

TEST(Archive, RoundTripIsExact) {
  TempFile tmp("ts_roundtrip.fdtrace");
  const auto recs = write_archive(tmp.path, 20);  // 2 full chunks + partial

  ArchiveReader reader;
  ASSERT_TRUE(reader.open(tmp.path)) << reader.error();
  EXPECT_EQ(reader.meta().logn, 4U);
  EXPECT_EQ(reader.meta().num_slots, 8U);
  EXPECT_EQ(reader.meta().seed, 0x5EEDULL);

  TraceRecord rec;
  for (const auto& want : recs) {
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.slot, want.slot);
    EXPECT_EQ(rec.index, want.index);
    EXPECT_EQ(rec.known_re_bits, want.known_re_bits);
    EXPECT_EQ(rec.known_im_bits, want.known_im_bits);
    ASSERT_EQ(rec.samples.size(), want.samples.size());
    for (std::size_t s = 0; s < kSamples; ++s) {
      // Bit-exact: floats survive the container unchanged.
      EXPECT_EQ(rec.samples[s], want.samples[s]);
    }
  }
  EXPECT_FALSE(reader.next(rec));
  EXPECT_EQ(reader.stats().records_read, recs.size());
  EXPECT_EQ(reader.stats().chunks_ok, 3U);
  EXPECT_TRUE(reader.stats().clean());
}

TEST(Archive, RewindReplaysFromTheTop) {
  TempFile tmp("ts_rewind.fdtrace");
  write_archive(tmp.path, 11);
  ArchiveReader reader;
  ASSERT_TRUE(reader.open(tmp.path));
  TraceRecord rec;
  while (reader.next(rec)) {
  }
  reader.rewind();
  std::size_t again = 0;
  while (reader.next(rec)) ++again;
  EXPECT_EQ(again, 11U);
}

TEST(Archive, RejectsBadMagic) {
  TempFile tmp("ts_badmagic.fdtrace");
  write_archive(tmp.path, 4);
  patch_file(tmp.path, 0, 0xFF);
  ArchiveReader reader;
  EXPECT_FALSE(reader.open(tmp.path));
  EXPECT_NE(reader.error().find("magic"), std::string::npos);
}

TEST(Archive, RejectsUnknownVersion) {
  TempFile tmp("ts_badver.fdtrace");
  write_archive(tmp.path, 4);
  patch_file(tmp.path, 8, 0x40);  // version u32 lives at offset 8
  ArchiveReader reader;
  EXPECT_FALSE(reader.open(tmp.path));
  EXPECT_NE(reader.error().find("version"), std::string::npos);
}

TEST(Archive, CorruptedChunkIsSkippedNotFatal) {
  TempFile tmp("ts_corrupt.fdtrace");
  write_archive(tmp.path, 3 * kTracesPerChunk);
  // Flip one payload byte in the middle chunk.
  patch_file(tmp.path, static_cast<long>(chunk_offset(1) + kChunkHeaderBytes + 5), 0x01);

  ArchiveReader reader;
  ASSERT_TRUE(reader.open(tmp.path));
  TraceRecord rec;
  std::vector<std::uint32_t> indices;
  while (reader.next(rec)) indices.push_back(rec.index * 8 + rec.slot);
  // Chunks 0 and 2 survive; chunk 1's records are gone but nothing dies.
  EXPECT_EQ(indices.size(), 2 * kTracesPerChunk);
  EXPECT_EQ(indices.front(), 0U);
  EXPECT_EQ(indices.back(), 3 * kTracesPerChunk - 1);
  EXPECT_EQ(reader.stats().chunks_ok, 2U);
  EXPECT_EQ(reader.stats().chunks_corrupt, 1U);
  EXPECT_FALSE(reader.stats().truncated_tail);
}

TEST(Archive, TruncatedTailEndsStreamCleanly) {
  TempFile tmp("ts_trunc.fdtrace");
  write_archive(tmp.path, 3 * kTracesPerChunk);
  // Cut the file in the middle of chunk 2's payload.
  truncate_file(tmp.path, static_cast<long>(chunk_offset(2) + kChunkHeaderBytes + 30));

  ArchiveReader reader;
  ASSERT_TRUE(reader.open(tmp.path));
  TraceRecord rec;
  std::size_t n = 0;
  while (reader.next(rec)) ++n;
  EXPECT_EQ(n, 2 * kTracesPerChunk);
  EXPECT_TRUE(reader.stats().truncated_tail);
  EXPECT_EQ(reader.stats().chunks_corrupt, 0U);
}

TEST(Archive, TruncatedChunkHeaderEndsStreamCleanly) {
  TempFile tmp("ts_trunchdr.fdtrace");
  write_archive(tmp.path, 2 * kTracesPerChunk);
  truncate_file(tmp.path, static_cast<long>(chunk_offset(1) + 7));
  ArchiveReader reader;
  ASSERT_TRUE(reader.open(tmp.path));
  TraceRecord rec;
  std::size_t n = 0;
  while (reader.next(rec)) ++n;
  EXPECT_EQ(n, kTracesPerChunk);
  EXPECT_TRUE(reader.stats().truncated_tail);
}

TEST(Archive, VerifyReportsDamage) {
  TempFile tmp("ts_verify.fdtrace");
  write_archive(tmp.path, 2 * kTracesPerChunk);

  VerifyReport report;
  ASSERT_TRUE(verify_archive(tmp.path, report));
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.records, 2 * kTracesPerChunk);

  patch_file(tmp.path, static_cast<long>(chunk_offset(0) + kChunkHeaderBytes + 2), 0x80);
  ASSERT_TRUE(verify_archive(tmp.path, report));
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.chunks_corrupt, 1U);
  EXPECT_EQ(report.records, kTracesPerChunk);
}

TEST(Archive, WriterRejectsRaggedRecords) {
  TempFile tmp("ts_ragged.fdtrace");
  ArchiveWriter writer;
  ASSERT_TRUE(writer.open(tmp.path, small_meta()));
  TraceRecord r;
  r.samples.resize(kSamples + 1);
  EXPECT_FALSE(writer.append(r));
  EXPECT_NE(writer.error().find("samples"), std::string::npos);
}

TEST(Archive, BatchReadingIsChunkBounded) {
  TempFile small("ts_small.fdtrace");
  TempFile large("ts_large.fdtrace");
  write_archive(small.path, 2 * kTracesPerChunk);
  write_archive(large.path, 10 * kTracesPerChunk);

  std::size_t residents[2];
  const std::string* paths[2] = {&small.path, &large.path};
  for (int i = 0; i < 2; ++i) {
    ArchiveReader reader;
    ASSERT_TRUE(reader.open(*paths[i]));
    std::vector<TraceRecord> batch;
    std::size_t total = 0;
    for (;;) {
      batch.clear();
      const std::size_t got = reader.next_batch(batch, 3);
      if (got == 0) break;
      EXPECT_LE(got, 3U);
      total += got;
    }
    EXPECT_EQ(total, (i == 0 ? 2 : 10) * kTracesPerChunk);
    residents[i] = reader.max_resident_records();
    EXPECT_LE(residents[i], kTracesPerChunk);
  }
  // Peak decoded state is the chunk size, independent of archive length.
  EXPECT_EQ(residents[0], residents[1]);
}

TEST(Merge, ShardCountsAddUpAndIndicesRebase) {
  TempFile a("ts_shard_a.fdtrace");
  TempFile b("ts_shard_b.fdtrace");
  TempFile out("ts_merged.fdtrace");
  write_archive(a.path, 24, /*seed=*/1);  // queries 0..2 over 8 slots
  write_archive(b.path, 16, /*seed=*/2);  // queries 0..1 over 8 slots

  const std::string inputs[2] = {a.path, b.path};
  std::string error;
  ASSERT_TRUE(merge_archives(inputs, out.path, &error)) << error;

  ArchiveReader reader;
  ASSERT_TRUE(reader.open(out.path));
  EXPECT_NE(reader.meta().flags & kFlagMerged, 0U);
  TraceRecord rec;
  std::size_t n = 0;
  std::uint32_t max_index = 0;
  while (reader.next(rec)) {
    ++n;
    max_index = std::max(max_index, rec.index);
  }
  EXPECT_EQ(n, 24U + 16U);
  // Shard A had queries 0..2, so shard B's queries became 3..4.
  EXPECT_EQ(max_index, 4U);
  EXPECT_TRUE(reader.stats().clean());
}

TEST(Merge, IncompatibleShardsRejected) {
  TempFile a("ts_inc_a.fdtrace");
  TempFile b("ts_inc_b.fdtrace");
  TempFile out("ts_inc_out.fdtrace");
  write_archive(a.path, 8);
  {
    ArchiveMeta other = small_meta();
    other.samples_per_trace = kSamples + 2;
    ArchiveWriter writer;
    ASSERT_TRUE(writer.open(b.path, other));
    TraceRecord r;
    r.samples.resize(kSamples + 2);
    ASSERT_TRUE(writer.append(r));
    ASSERT_TRUE(writer.close());
  }
  const std::string inputs[2] = {a.path, b.path};
  std::string error;
  EXPECT_FALSE(merge_archives(inputs, out.path, &error));
  EXPECT_NE(error.find("incompatible"), std::string::npos);
}

// Reads every record of an archive in stream order.
std::vector<TraceRecord> read_all(const std::string& path) {
  std::vector<TraceRecord> recs;
  ArchiveReader reader;
  EXPECT_TRUE(reader.open(path)) << reader.error();
  TraceRecord rec;
  while (reader.next(rec)) recs.push_back(rec);
  EXPECT_TRUE(reader.stats().clean());
  return recs;
}

void expect_same_records(const std::vector<TraceRecord>& a, const std::vector<TraceRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].slot, b[i].slot) << "record " << i;
    EXPECT_EQ(a[i].index, b[i].index) << "record " << i;
    EXPECT_EQ(a[i].known_re_bits, b[i].known_re_bits) << "record " << i;
    EXPECT_EQ(a[i].known_im_bits, b[i].known_im_bits) << "record " << i;
    EXPECT_EQ(a[i].samples, b[i].samples) << "record " << i;
  }
}

TEST(Split, ContiguousQueryRangesRebasedToZero) {
  TempFile in("ts_split_in.fdtrace");
  write_archive(in.path, 56, /*seed=*/7);  // queries 0..6 over 8 slots
  TempFile s0("ts_split_out.shard0"), s1("ts_split_out.shard1"), s2("ts_split_out.shard2");

  std::string error;
  std::vector<std::string> paths;
  ASSERT_TRUE(split_archive(in.path, "ts_split_out", 3, &paths, &error)) << error;
  ASSERT_EQ(paths.size(), 3U);

  // 7 queries over 3 shards: leading-heavy plan 3 + 2 + 2.
  const std::size_t expected_queries[3] = {3, 2, 2};
  for (std::size_t i = 0; i < 3; ++i) {
    const auto recs = read_all(paths[i]);
    EXPECT_EQ(recs.size(), expected_queries[i] * 8) << "shard " << i;
    std::uint32_t max_index = 0;
    for (const auto& r : recs) max_index = std::max(max_index, r.index);
    EXPECT_EQ(max_index + 1, expected_queries[i]) << "shard " << i;  // re-based to 0
    ArchiveReader reader;
    ASSERT_TRUE(reader.open(paths[i]));
    EXPECT_EQ(reader.meta().flags & kFlagMerged, 0U);
  }
}

TEST(Split, MergeOfSplitReproducesTheArchive) {
  TempFile in("ts_roundtrip_in.fdtrace");
  TempFile out("ts_roundtrip_out.fdtrace");
  write_archive(in.path, 40, /*seed=*/11);  // queries 0..4 over 8 slots
  TempFile s0("ts_roundtrip.shard0"), s1("ts_roundtrip.shard1"), s2("ts_roundtrip.shard2");

  std::string error;
  std::vector<std::string> paths;
  ASSERT_TRUE(split_archive(in.path, "ts_roundtrip", 3, &paths, &error)) << error;
  ASSERT_TRUE(merge_archives(paths, out.path, &error)) << error;
  expect_same_records(read_all(out.path), read_all(in.path));
}

TEST(Split, ShardCountCappedAtQueries) {
  TempFile in("ts_split_cap.fdtrace");
  write_archive(in.path, 16, /*seed=*/13);  // only 2 queries
  TempFile s0("ts_split_cap_out.shard0"), s1("ts_split_cap_out.shard1");

  std::string error;
  std::vector<std::string> paths;
  ASSERT_TRUE(split_archive(in.path, "ts_split_cap_out", 9, &paths, &error)) << error;
  EXPECT_EQ(paths.size(), 2U);  // one shard per query, no empty shards
}

TEST(Split, EmptyArchiveRejected) {
  TempFile in("ts_split_empty.fdtrace");
  write_archive(in.path, 0);
  std::string error;
  EXPECT_FALSE(split_archive(in.path, "ts_split_empty_out", 2, nullptr, &error));
  EXPECT_NE(error.find("no records"), std::string::npos);
}

}  // namespace
}  // namespace fd::tracestore
